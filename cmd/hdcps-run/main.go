// Command hdcps-run executes one (executor, workload, input) combination
// and prints its metrics: completion time, task counts, work efficiency,
// priority drift, and the §IV-C breakdown. The executor is any simulated
// scheduler, or "native" for the goroutine HD-CPS runtime.
//
// Usage:
//
//	hdcps-run -sched hdcps-sw -workload sssp -input road -cores 40 [-hw] [-scale small]
//	hdcps-run -sched native -workload sssp -input road -cores 4
//	hdcps-run -sched native -workload sssp -input road -queue twolevel
//	hdcps-run -sched native -workload sssp -input road -queue multiqueue
//	hdcps-run -sched native -workload sssp -input road -trace trace.jsonl -metrics :6060
//	hdcps-run -sched native -workload sssp -input cage -jobs 4 -weights 4,2,1,1
//	hdcps-run -chaos "seed=42,delay=0.1,dup=0.02,reorder=0.2" -workload sssp -input road
//	hdcps-run -list
//
// For -sched native, -trace writes the observability layer's JSONL trace
// (schema "hdcps-obs/v2": counters, sampled events, per-job ledger rows,
// the drift/ref/TDF control series) and -metrics serves expvar + pprof + a
// live counter snapshot at /debug/obs while the run executes.
//
// -jobs K runs K concurrent clones of the workload as tenants of ONE native
// engine (the multi-tenant job layer) with fair-share weights from -weights
// (comma-separated, default all 1), and prints each tenant's conservation
// ledger plus its measured share of processed tasks over the window where
// every tenant was backlogged, against the share its weight entitles it to.
//
// -chaos runs the native runtime behind the fault-injecting transport
// (executor "native-chaos") with the given mix spec ("default" for the
// stock mix) and prints the injected-fault counts, the conservation-ledger
// verdict, and any quarantined tasks or stall diagnostics.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the -metrics server
	"os"
	"strconv"
	"strings"

	"hdcps/internal/chaos"
	"hdcps/internal/exec"
	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/stats"
	"hdcps/internal/workload"
)

func main() {
	var (
		schedName = flag.String("sched", "hdcps-sw", "executor name: a simulated scheduler or \"native\" (see -list)")
		wlName    = flag.String("workload", "sssp", "workload name (see -list)")
		input     = flag.String("input", "road", "input graph: road, cage, web, lj, grid, or a file path (.gr/.txt/.mtx)")
		cores     = flag.Int("cores", 40, "simulated cores, or native worker goroutines for -sched native")
		hw        = flag.Bool("hw", false, "use the Table I hardware machine (hRQ/hPQ enabled; simulated executors only)")
		scale     = flag.String("scale", "small", "synthetic input scale: tiny, small, large")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		verify    = flag.Bool("verify", true, "verify the workload result against the sequential reference")
		list      = flag.Bool("list", false, "list executors and workloads, then exit")
		trace     = flag.String("trace", "", "write the native runtime's JSONL observability trace here (\"-\" for stdout; -sched native only)")
		metrics   = flag.String("metrics", "", "serve expvar/pprof/obs debug HTTP on this address during the run, e.g. :6060 (-sched native only)")
		chaosSpec = flag.String("chaos", "", "run under fault injection with this mix, e.g. \"seed=42,delay=0.1,dup=0.02\" or \"default\" (native runtime only)")
		jobsN     = flag.Int("jobs", 1, "run this many concurrent clones of the workload as tenants of one native engine (-sched native only)")
		weightsCS = flag.String("weights", "", "comma-separated fair-share weights for -jobs tenants, e.g. 4,2,1,1 (default: all 1)")
		// The accepted values come from runtime.QueueKinds() — both here and
		// in validQueueKind — so a newly registered kind can never be
		// silently missing from the CLI.
		queueKind = flag.String("queue", "", "native local-queue shape: "+
			strings.Join(runtime.QueueKinds(), ", ")+
			" (default "+runtime.QueueTwoLevel+"; -sched native only)")
	)
	flag.Parse()

	if *list {
		fmt.Println("executors: ", exec.Names())
		fmt.Println("workloads: ", workload.Names())
		fmt.Println("inputs:    road cage web lj grid, or a file path (.gr DIMACS, .txt SNAP, .mtx MatrixMarket)")
		return
	}

	g, err := buildInput(*input, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	w, err := workload.New(*wlName, g)
	if err != nil {
		fatal(err)
	}
	// -chaos forces the fault-injected native executor.
	if *chaosSpec != "" {
		*schedName = exec.ChaosName
	}
	x, err := exec.ByName(*schedName)
	if err != nil {
		fatal(err)
	}
	isChaos := *schedName == exec.ChaosName
	native := *schedName == exec.NativeName || isChaos

	spec := exec.Spec{Cores: *cores, Seed: *seed, Hardware: *hw}
	var rec *obs.Recorder
	if *trace != "" || *metrics != "" || *queueKind != "" {
		if !native {
			fatal(fmt.Errorf("-trace/-metrics/-queue need the native runtime (use -sched native)"))
		}
		if *queueKind != "" && !validQueueKind(*queueKind) {
			fatal(fmt.Errorf("unknown -queue %q (valid: %s)", *queueKind, strings.Join(runtime.QueueKinds(), ", ")))
		}
		workers := *cores
		if workers <= 0 {
			workers = 4
		}
		cfg := runtime.DefaultConfig(workers)
		cfg.Seed = *seed
		cfg.QueueKind = *queueKind
		if *trace != "" || *metrics != "" {
			rec = obs.New(obs.Config{Workers: workers})
			cfg.Obs = rec
		}
		spec.Native = &cfg
		if *metrics != "" {
			expvar.Publish("hdcps_obs", expvar.Func(rec.Vars()))
			http.Handle("/debug/obs", rec.Handler())
			go func() {
				if err := http.ListenAndServe(*metrics, nil); err != nil {
					fmt.Fprintf(os.Stderr, "hdcps-run: metrics server: %v\n", err)
				}
			}()
			fmt.Fprintf(os.Stderr, "metrics: serving /debug/vars /debug/pprof/ /debug/obs on %s\n", *metrics)
		}
	}

	if *jobsN > 1 {
		if !native || isChaos {
			fatal(fmt.Errorf("-jobs needs the plain native runtime (use -sched native)"))
		}
		runJobsCmd(w, g, *jobsN, *weightsCS, spec, rec, *trace, *verify)
		return
	}
	if *weightsCS != "" {
		fatal(fmt.Errorf("-weights needs -jobs > 1"))
	}

	var r stats.Run
	var rep *exec.ChaosReport
	if isChaos {
		mix, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		spec.Chaos = &mix
		r, rep = exec.RunChaos(w, spec)
	} else {
		r = x.Run(w, spec)
	}
	r.SeqTasks = workload.RunSequential(w.Clone())

	fmt.Printf("executor:        %s\n", r.Scheduler)
	fmt.Printf("workload/input:  %s / %s (%d nodes, %d edges)\n",
		r.Workload, r.Input, g.NumNodes(), g.NumEdges())
	fmt.Printf("cores:           %d (%s mode)\n", r.Cores, mode(native, *hw))
	fmt.Printf("completion time: %d %s\n", r.CompletionTime, timeUnit(native))
	fmt.Printf("tasks processed: %d (sequential needs %d, work efficiency %.3f)\n",
		r.TasksProcessed, r.SeqTasks, r.WorkEfficiency())
	if r.EdgesExamined > 0 {
		fmt.Printf("edges examined:  %d\n", r.EdgesExamined)
	}
	if !native {
		fmt.Printf("messages sent:   %d\n", r.MessagesSent)
	}
	if r.BagsCreated > 0 {
		fmt.Printf("bags created:    %d (%d tasks bagged)\n", r.BagsCreated, r.BaggedTasks)
	}
	if r.Aborts > 0 {
		fmt.Printf("aborts:          %d\n", r.Aborts)
	}
	fmt.Printf("avg drift:       %.2f over %d samples\n", r.AvgDrift(), len(r.DriftTrace))
	if len(r.TDFTrace) > 0 {
		fmt.Printf("TDF trace:       %v\n", compact(r.TDFTrace, 16))
	}
	if !native {
		fmt.Printf("breakdown:       %s\n", r.Breakdown)
	}

	if rep != nil {
		fmt.Printf("chaos mix:       %s\n", rep.Mix)
		fmt.Printf("chaos faults:    %s\n", rep.Faults)
		s := rep.Snapshot
		fmt.Printf("chaos ledger:    submitted %d + spawned %d = processed %d + bagsRetired %d + quarantined %d (outstanding %d, redirects %d)\n",
			s.Submitted, s.Spawned, s.TasksProcessed, s.BagsRetired, s.Quarantined, s.Outstanding, s.Redirects)
		if rep.ConservationErr != nil {
			fatal(fmt.Errorf("conservation FAILED: %w", rep.ConservationErr))
		}
		fmt.Println("conservation:    OK (no task lost)")
		for _, q := range rep.Quarantined {
			fmt.Printf("quarantined:     %s\n", q)
		}
		if rep.DrainErr != nil {
			fatal(fmt.Errorf("drain stalled: %w", rep.DrainErr))
		}
	}
	if rec != nil {
		fmt.Printf("obs:             %d events recorded, %d spills, %d parks, %d TDF steps\n",
			rec.EventCount(), rec.Total(obs.COverflowSpills),
			rec.Total(obs.CIdleParks), rec.Total(obs.CTDFSteps))
	}
	if *trace != "" {
		if err := writeTrace(*trace, rec, r); err != nil {
			fatal(err)
		}
		if *trace != "-" {
			fmt.Printf("trace:           %s (%s)\n", *trace, obs.TraceSchema)
		}
	}

	if *verify {
		if rep != nil && len(rep.Quarantined) > 0 {
			// Quarantined tasks are accounted-for losses: the run is lossy by
			// design, so the sequential reference no longer applies.
			fmt.Printf("verification:    skipped (%d tasks quarantined)\n", len(rep.Quarantined))
		} else if err := w.Verify(); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		} else {
			fmt.Println("verification:    OK")
		}
	}
}

// runJobsCmd executes n concurrent clones of the workload as tenants of one
// native engine and prints per-job ledgers plus the weighted-fairness
// verdict: each tenant's measured share of processed tasks over the
// all-backlogged contention window against its weight share.
func runJobsCmd(w workload.Workload, g *graph.CSR, n int, weightSpec string, spec exec.Spec, rec *obs.Recorder, tracePath string, verify bool) {
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	if weightSpec != "" {
		parts := strings.Split(weightSpec, ",")
		if len(parts) != n {
			fatal(fmt.Errorf("-weights has %d entries, -jobs wants %d", len(parts), n))
		}
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("-weights entry %q: want a positive integer", p))
			}
			weights[i] = v
		}
	}
	ws := make([]workload.Workload, n)
	jcs := make([]runtime.JobConfig, n)
	ws[0] = w
	for i := 1; i < n; i++ {
		ws[i] = w.Clone()
	}
	for i := range ws {
		jcs[i] = runtime.JobConfig{Name: fmt.Sprintf("%s-%d", w.Name(), i), Weight: weights[i]}
	}
	r, rep, err := exec.RunJobs(ws, jcs, spec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("executor:        %s\n", r.Scheduler)
	fmt.Printf("workload/input:  %s / %s (%d nodes, %d edges)\n",
		r.Workload, r.Input, g.NumNodes(), g.NumEdges())
	fmt.Printf("cores:           %d (native goroutines)\n", r.Cores)
	fmt.Printf("completion time: %d ns\n", r.CompletionTime)
	fmt.Printf("tasks processed: %d (all tenants)\n", r.TasksProcessed)
	fmt.Printf("jobs:            %d tenants, weights %v\n", n, weights)
	for i, js := range rep.Jobs {
		fmt.Printf("job %d (%s): weight %d share %.3f (want %.3f) | submitted %d + spawned %d = processed %d + bags %d + quarantined %d + cancelled %d (outstanding %d)\n",
			i, js.Name, js.Weight, rep.Shares[i], rep.WeightShares[i],
			js.Submitted, js.Spawned, js.Processed, js.BagsRetired,
			js.Quarantined, js.CancelledTasks, js.Outstanding)
	}
	fmt.Printf("fairness window: %d tasks, worst |share-want| %.4f\n",
		rep.ShareSamples, rep.ShareError())
	if rep.DrainErr != nil {
		fatal(fmt.Errorf("drain stalled: %w", rep.DrainErr))
	}
	if rep.ConservationErr != nil {
		fatal(fmt.Errorf("conservation FAILED: %w", rep.ConservationErr))
	}
	fmt.Println("conservation:    OK (global + per-job ledgers exact, rows partition the totals)")

	if tracePath != "" && rec != nil {
		err := func() error {
			out := os.Stdout
			if tracePath != "-" {
				f, err := os.Create(tracePath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			if err := rec.WriteJSONL(out); err != nil {
				return err
			}
			return obs.WriteJobsJSONL(out, runtime.JobRows(rep.Jobs))
		}()
		if err != nil {
			fatal(err)
		}
		if tracePath != "-" {
			fmt.Printf("trace:           %s (%s)\n", tracePath, obs.TraceSchema)
		}
	}

	if verify {
		for i, tw := range ws {
			if err := tw.Verify(); err != nil {
				fatal(fmt.Errorf("verification FAILED for job %d: %w", i, err))
			}
		}
		fmt.Printf("verification:    OK (%d tenants)\n", n)
	}
}

// writeTrace dumps the recorder's JSONL trace plus the run's control-plane
// time series (drift/ref/TDF per interval).
func writeTrace(path string, rec *obs.Recorder, r stats.Run) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := rec.WriteJSONL(out); err != nil {
		return err
	}
	return obs.WriteControlJSONL(out, obs.ControlSeries(r.DriftTrace, r.RefTrace, r.TDFTrace))
}

func validQueueKind(kind string) bool {
	for _, k := range runtime.QueueKinds() {
		if k == kind {
			return true
		}
	}
	return false
}

func mode(native, hw bool) string {
	switch {
	case native:
		return "native goroutines"
	case hw:
		return "hardware"
	default:
		return "software"
	}
}

func timeUnit(native bool) string {
	if native {
		return "ns"
	}
	return "cycles"
}

func compact(xs []int, max int) []int {
	if len(xs) <= max {
		return xs
	}
	return xs[:max]
}

func buildInput(name, scale string, seed uint64) (*graph.CSR, error) {
	var roadW, cageN, webN, ljN, gridW int
	switch scale {
	case "tiny":
		roadW, cageN, webN, ljN, gridW = 48, 1500, 1500, 1200, 32
	case "small":
		roadW, cageN, webN, ljN, gridW = 120, 8000, 8000, 6000, 64
	case "large":
		roadW, cageN, webN, ljN, gridW = 240, 30000, 30000, 20000, 128
	default:
		return nil, fmt.Errorf("unknown scale %q", scale)
	}
	switch name {
	case "road":
		return graph.Road(roadW, roadW, seed), nil
	case "cage":
		return graph.Cage(cageN, 34, 80, seed), nil
	case "web":
		return graph.Web(webN, seed), nil
	case "lj":
		return graph.LJ(ljN, seed), nil
	case "grid":
		return graph.Grid(gridW, gridW, 100, seed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("input %q is not a builtin and not readable: %w", name, err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(name, ".mtx"):
		return graph.ReadMatrixMarket(name, f)
	case strings.HasSuffix(name, ".txt"):
		return graph.ReadSNAP(name, f)
	default:
		return graph.ReadDIMACS(name, f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdcps-run:", err)
	os.Exit(1)
}
