// Command hdcps-run executes one (executor, workload, input) combination
// and prints its metrics: completion time, task counts, work efficiency,
// priority drift, and the §IV-C breakdown. The executor is any simulated
// scheduler, or "native" for the goroutine HD-CPS runtime.
//
// Usage:
//
//	hdcps-run -sched hdcps-sw -workload sssp -input road -cores 40 [-hw] [-scale small]
//	hdcps-run -sched native -workload sssp -input road -cores 4
//	hdcps-run -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdcps/internal/exec"
	"hdcps/internal/graph"
	"hdcps/internal/workload"
)

func main() {
	var (
		schedName = flag.String("sched", "hdcps-sw", "executor name: a simulated scheduler or \"native\" (see -list)")
		wlName    = flag.String("workload", "sssp", "workload name (see -list)")
		input     = flag.String("input", "road", "input graph: road, cage, web, lj, grid, or a file path (.gr/.txt/.mtx)")
		cores     = flag.Int("cores", 40, "simulated cores, or native worker goroutines for -sched native")
		hw        = flag.Bool("hw", false, "use the Table I hardware machine (hRQ/hPQ enabled; simulated executors only)")
		scale     = flag.String("scale", "small", "synthetic input scale: tiny, small, large")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		verify    = flag.Bool("verify", true, "verify the workload result against the sequential reference")
		list      = flag.Bool("list", false, "list executors and workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("executors: ", exec.Names())
		fmt.Println("workloads: ", workload.Names())
		fmt.Println("inputs:    road cage web lj grid, or a file path (.gr DIMACS, .txt SNAP, .mtx MatrixMarket)")
		return
	}

	g, err := buildInput(*input, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	w, err := workload.New(*wlName, g)
	if err != nil {
		fatal(err)
	}
	x, err := exec.ByName(*schedName)
	if err != nil {
		fatal(err)
	}
	native := *schedName == exec.NativeName

	r := x.Run(w, exec.Spec{Cores: *cores, Seed: *seed, Hardware: *hw})
	r.SeqTasks = workload.RunSequential(w.Clone())

	fmt.Printf("executor:        %s\n", r.Scheduler)
	fmt.Printf("workload/input:  %s / %s (%d nodes, %d edges)\n",
		r.Workload, r.Input, g.NumNodes(), g.NumEdges())
	fmt.Printf("cores:           %d (%s mode)\n", r.Cores, mode(native, *hw))
	fmt.Printf("completion time: %d %s\n", r.CompletionTime, timeUnit(native))
	fmt.Printf("tasks processed: %d (sequential needs %d, work efficiency %.3f)\n",
		r.TasksProcessed, r.SeqTasks, r.WorkEfficiency())
	if r.EdgesExamined > 0 {
		fmt.Printf("edges examined:  %d\n", r.EdgesExamined)
	}
	if !native {
		fmt.Printf("messages sent:   %d\n", r.MessagesSent)
	}
	if r.BagsCreated > 0 {
		fmt.Printf("bags created:    %d (%d tasks bagged)\n", r.BagsCreated, r.BaggedTasks)
	}
	if r.Aborts > 0 {
		fmt.Printf("aborts:          %d\n", r.Aborts)
	}
	fmt.Printf("avg drift:       %.2f over %d samples\n", r.AvgDrift(), len(r.DriftTrace))
	if len(r.TDFTrace) > 0 {
		fmt.Printf("TDF trace:       %v\n", compact(r.TDFTrace, 16))
	}
	if !native {
		fmt.Printf("breakdown:       %s\n", r.Breakdown)
	}

	if *verify {
		if err := w.Verify(); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Println("verification:    OK")
	}
}

func mode(native, hw bool) string {
	switch {
	case native:
		return "native goroutines"
	case hw:
		return "hardware"
	default:
		return "software"
	}
}

func timeUnit(native bool) string {
	if native {
		return "ns"
	}
	return "cycles"
}

func compact(xs []int, max int) []int {
	if len(xs) <= max {
		return xs
	}
	return xs[:max]
}

func buildInput(name, scale string, seed uint64) (*graph.CSR, error) {
	var roadW, cageN, webN, ljN, gridW int
	switch scale {
	case "tiny":
		roadW, cageN, webN, ljN, gridW = 48, 1500, 1500, 1200, 32
	case "small":
		roadW, cageN, webN, ljN, gridW = 120, 8000, 8000, 6000, 64
	case "large":
		roadW, cageN, webN, ljN, gridW = 240, 30000, 30000, 20000, 128
	default:
		return nil, fmt.Errorf("unknown scale %q", scale)
	}
	switch name {
	case "road":
		return graph.Road(roadW, roadW, seed), nil
	case "cage":
		return graph.Cage(cageN, 34, 80, seed), nil
	case "web":
		return graph.Web(webN, seed), nil
	case "lj":
		return graph.LJ(ljN, seed), nil
	case "grid":
		return graph.Grid(gridW, gridW, 100, seed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("input %q is not a builtin and not readable: %w", name, err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(name, ".mtx"):
		return graph.ReadMatrixMarket(name, f)
	case strings.HasSuffix(name, ".txt"):
		return graph.ReadSNAP(name, f)
	default:
		return graph.ReadDIMACS(name, f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdcps-run:", err)
	os.Exit(1)
}
