// Command hdcps-load is the open-loop traffic driver for hdcps-serve: it
// offers refresh tasks at a fixed arrival rate (Poisson, uniform, or bursty
// schedules) regardless of how fast the server absorbs them, and reports
// the latency quantiles plus the accept/backpressure/error accounting.
//
// By default each batch is a resumable retrying stream: transport faults and
// 429/503/408 answers are retried with capped exponential backoff plus full
// jitter, honoring the server's Retry-After hints, and interrupted NDJSON
// streams resume exactly-once via X-Stream-Id (no accepted task is ever
// re-admitted). -strict disables all retries and makes any 5xx or transport
// error exit nonzero — the CI gate's stance that saturation must surface as
// 429/503 backpressure, never as a server failure.
//
// Usage:
//
//	hdcps-load -url http://127.0.0.1:8080 -rate 4000 -duration 5s
//	hdcps-load -url http://$(cat /tmp/addr) -rate 20000 -arrivals bursty -hist hist.json
//	hdcps-load -url http://$(cat /tmp/addr) -wait-ready 10s -strict -rate 2000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hdcps/internal/load"
	"hdcps/internal/serve"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "hdcps-serve base URL")
		jobID    = flag.Uint("job", 0, "target job ID")
		rate     = flag.Float64("rate", 4000, "offered task rate, tasks/second")
		duration = flag.Duration("duration", 5*time.Second, "how long to generate arrivals")
		batch    = flag.Int("batch", 16, "tasks per submit request")
		arrivals = flag.String("arrivals", "poisson", "arrival schedule: poisson, uniform, bursty")
		burstF   = flag.Float64("burst-factor", 4, "bursty peak-to-mean ratio")
		burstP   = flag.Duration("burst-period", 200*time.Millisecond, "bursty on+off cycle")
		seed     = flag.Int64("seed", 1, "arrival-schedule seed")
		inflight = flag.Int("inflight", 128, "max concurrent submit requests (arrivals beyond are shed)")
		histOut  = flag.String("hist", "", "write the latency histogram JSON here")
		strict   = flag.Bool("strict", false, "no retries: any 5xx or transport error exits nonzero (the CI-gate stance)")
		waitRdy  = flag.Duration("wait-ready", 0, "poll /readyz this long before driving load (0 skips the wait)")
		retries  = flag.Int("retries", 8, "max attempts per stream in retrying mode")
		backoff  = flag.Duration("backoff", 25*time.Millisecond, "base backoff between retries (capped exponential, full jitter)")
		streams  = flag.Int("streams", 0, "hold N persistent NDJSON streams open and round-robin batches onto them (0: one POST per batch)")
	)
	flag.Parse()
	base := strings.TrimSuffix(*url, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	ctx := context.Background()
	cl := &serve.Client{Base: base, HC: &http.Client{Timeout: 30 * time.Second}}
	if *waitRdy > 0 {
		if err := cl.WaitReady(ctx, *waitRdy); err != nil {
			fatal(err)
		}
	}
	info, err := cl.Info(ctx)
	if err != nil {
		fatal(fmt.Errorf("fetching /v1/info: %w", err))
	}
	fmt.Printf("target: %s %s/%s (%d nodes), %d workers, queue %s\n",
		base, info.Workload, info.Input, info.Nodes, info.Workers, info.Queue)

	gen := serve.RefreshGen(info.Nodes, *seed)
	var retryStats serve.RetryStats
	pol := serve.RetryPolicy{
		MaxAttempts:    *retries,
		BaseBackoff:    *backoff,
		RequestTimeout: 10 * time.Second,
		Seed:           uint64(*seed),
	}
	var submitter load.Submitter
	switch {
	case *streams > 0:
		if *strict {
			fatal(fmt.Errorf("-streams and -strict are mutually exclusive: persistent streams retry by design"))
		}
		var closer io.Closer
		submitter, closer = cl.StreamSubmitter(ctx, uint32(*jobID), gen, *streams, pol, &retryStats)
		defer closer.Close()
		fmt.Printf("streams:  %d persistent\n", *streams)
	case *strict:
		submitter = cl.Submitter(ctx, uint32(*jobID), gen)
	default:
		submitter = cl.RetrySubmitter(ctx, uint32(*jobID), gen, pol, &retryStats)
	}
	res := load.Run(ctx, submitter, load.Options{
		Rate:        *rate,
		Batch:       *batch,
		Duration:    *duration,
		Arrivals:    *arrivals,
		BurstFactor: *burstF,
		BurstPeriod: *burstP,
		Seed:        *seed,
		MaxInFlight: *inflight,
	})

	sum := res.Hist.Summary()
	fmt.Printf("offered:  %d tasks (%.0f/s target %.0f/s, %s arrivals, %s)\n",
		res.Offered, res.OfferedRate(), *rate, *arrivals, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("accepted: %d (%.0f/s)  rejected: %d  shed: %d  requests: %d\n",
		res.Accepted, res.AcceptedRate(), res.Rejected, res.Shed, res.Requests)
	fmt.Printf("latency:  p50 %.2fms  p90 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n",
		sum.P50Ms, sum.P90Ms, sum.P99Ms, sum.P999Ms, sum.MaxMs)
	fmt.Printf("outcomes: %d ok, %d backpressure, %d server-error batches\n",
		res.BatchesByOut[load.Accepted], res.BatchesByOut[load.Backpressure], res.BatchesByOut[load.ServerError])
	if !*strict {
		fmt.Printf("retrying: %s\n", retryStats.String())
	}
	if res.GenSlipped > 0 || res.GeneratorBound {
		fmt.Printf("clock:    %d arrivals slipped, max lag %s%s\n",
			res.GenSlipped, res.GenLagMax.Round(time.Microsecond),
			map[bool]string{true: "  ** GENERATOR-BOUND: results measure the generator, not the server **", false: ""}[res.GeneratorBound])
	}

	if *histOut != "" {
		buf, err := json.MarshalIndent(res.Hist, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*histOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("histogram: %s\n", *histOut)
	}

	if res.ServerErrs > 0 {
		fatal(fmt.Errorf("%d server errors (last: %v)", res.ServerErrs, res.LastErr))
	}
	if res.Offered == 0 || res.Accepted == 0 {
		fatal(fmt.Errorf("no traffic landed (offered %d, accepted %d)", res.Offered, res.Accepted))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdcps-load:", err)
	os.Exit(1)
}
