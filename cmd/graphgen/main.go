// Command graphgen emits the synthetic evaluation graphs in DIMACS ".gr"
// format, so they can be inspected, reused, or fed to other tools.
//
// Usage:
//
//	graphgen -kind road -n 14400 -o road.gr
//	graphgen -kind web -n 5000 -seed 7 -o web.gr
//	graphgen -kind cage -n 8000 -stats
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hdcps/internal/graph"
)

func main() {
	var (
		kind  = flag.String("kind", "road", "graph family: road, cage, web, lj, grid")
		n     = flag.Int("n", 10000, "approximate node count (lattice kinds round to a square)")
		seed  = flag.Uint64("seed", 42, "deterministic seed")
		out   = flag.String("o", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print Table II statistics instead of the graph")
	)
	flag.Parse()

	g, err := build(*kind, *n, *seed)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Println(graph.ComputeStats(g))
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteDIMACS(w, g); err != nil {
		fatal(err)
	}
}

func build(kind string, n int, seed uint64) (*graph.CSR, error) {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side < 2 {
		side = 2
	}
	switch kind {
	case "road":
		return graph.Road(side, side, seed), nil
	case "cage":
		return graph.Cage(n, 34, 80, seed), nil
	case "web":
		return graph.Web(n, seed), nil
	case "lj":
		return graph.LJ(n, seed), nil
	case "grid":
		return graph.Grid(side, side, 100, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
