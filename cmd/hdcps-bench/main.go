// Command hdcps-bench regenerates the paper's tables and figures: it runs
// the relevant schedulers and workloads on the simulator (or the native
// runtime, for Fig. 10) and prints the same rows and series the paper
// reports.
//
// Usage:
//
//	hdcps-bench -exp fig3            # one experiment
//	hdcps-bench -exp all             # the whole evaluation section
//	hdcps-bench -list                # available experiments
//	hdcps-bench -exp fig8 -scale large -seed 7
//	hdcps-bench -exp all -par 8      # run the experiment grid on 8 workers
//	hdcps-bench -native -label pr1 -o BENCH_native.json   # native runtime perf
//	hdcps-bench -native -label ci -scale tiny -reps 3 -o /tmp/gate.json \
//	    -check BENCH_native.json -tol 0.25               # CI regression gate
//	hdcps-bench -serve -label pr8 -o BENCH_serve.json     # serving saturation sweep
//	hdcps-bench -serve -label ci -scale tiny -o /tmp/serve.json \
//	    -check BENCH_serve.json -tol 0.25                # serve CI gate
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"hdcps/internal/exp"
)

// startCPUProfile begins profiling into path ("" is a no-op) and returns the
// stop function; profile errors are fatal since the caller asked for data.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err == nil {
		err = pprof.StartCPUProfile(f)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcps-bench: cpuprofile: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err == nil {
		err = pprof.Lookup("allocs").WriteTo(f, 0)
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcps-bench: memprofile: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	var (
		id     = flag.String("exp", "", "experiment to run: table1, table2, fig3..fig15, or all")
		scale  = flag.String("scale", "small", "input scale: tiny, small, large")
		seed   = flag.Uint64("seed", 42, "deterministic seed")
		cores  = flag.Int("cores", 40, "software-mode core count (hardware experiments always use Table I's 64)")
		format = flag.String("format", "table", "output format: table or csv")
		list   = flag.Bool("list", false, "list experiments and exit")
		par    = flag.Int("par", 0, "experiment grid worker pool size (0 = GOMAXPROCS)")
		trace  = flag.String("trace", "", "JSONL observability trace output for trace-producing experiments (e.g. drift-timeline; \"-\" for stdout)")

		native  = flag.Bool("native", false, "benchmark the native goroutine runtime and emit BENCH_native.json")
		srv     = flag.Bool("serve", false, "benchmark the network front-end (saturation sweep) and emit BENCH_serve.json")
		label   = flag.String("label", "dev", "label for the -native/-serve run (e.g. a commit or PR id)")
		out     = flag.String("o", "", "output path for -native/-serve (default BENCH_native.json / BENCH_serve.json; \"-\" for stdout)")
		workers = flag.Int("workers", 4, "native runtime worker count for -native/-serve")
		reps    = flag.Int("reps", 20, "repetitions per workload for -native")
		check   = flag.String("check", "", "regression gate: compare the fresh -native/-serve run against the latest run in this baseline document")
		tol     = flag.Float64("tol", 0.25, "fractional collapse tolerance for -check: fail below (1-tol) of baseline")
		probeD  = flag.Duration("probe-dur", 400*time.Millisecond, "per-probe duration for the -serve knee search")
		fixedD  = flag.Duration("fixed-dur", 0, "fixed-rate latency run duration for -serve (0: 2x probe-dur)")
		streams = flag.Int("streams", 0, "persistent-stream fan-out for -serve probes (0: 4, negative: legacy one POST per batch)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the -serve sweep here")
		memProf = flag.String("memprofile", "", "write a heap profile after the -serve sweep here")
	)
	flag.Parse()

	if *srv {
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		stopProf := startCPUProfile(*cpuProf)
		run, err := runServeBench(*label, *scale, *out, *workers, *streams, *seed, *probeD, *fixedD)
		// Profiles are written before the exit-code decision so a failed run
		// (the case worth profiling) still leaves its artifacts behind.
		stopProf()
		if *memProf != "" {
			writeHeapProfile(*memProf)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcps-bench: serve bench failed: %v\n", err)
			os.Exit(1)
		}
		if *check != "" {
			if err := checkServeRun(run, *check, *tol); err != nil {
				fmt.Fprintf(os.Stderr, "hdcps-bench: serve gate failed: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *native {
		if *out == "" {
			*out = "BENCH_native.json"
		}
		run, err := runNativeBench(*label, *scale, *out, *workers, *reps, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcps-bench: native bench failed: %v\n", err)
			os.Exit(1)
		}
		if *check != "" {
			if err := checkNativeRun(run, *check, *tol); err != nil {
				fmt.Fprintf(os.Stderr, "hdcps-bench: regression gate failed: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, eid := range exp.IDs() {
			e, _ := exp.Get(eid)
			fmt.Printf("  %-8s %s\n", eid, e.Title)
		}
		return
	}

	opts := exp.Options{Scale: *scale, Seed: *seed, Cores: *cores, Par: *par, TracePath: *trace}
	ids := []string{strings.ToLower(*id)}
	if *id == "all" {
		ids = exp.IDs()
	}
	for _, eid := range ids {
		e, ok := exp.Get(eid)
		if !ok {
			fmt.Fprintf(os.Stderr, "hdcps-bench: unknown experiment %q (use -list)\n", eid)
			os.Exit(1)
		}
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcps-bench: %s failed: %v\n", eid, err)
			os.Exit(1)
		}
		if *format == "csv" {
			res.FormatCSV(os.Stdout)
		} else {
			res.Format(os.Stdout)
			fmt.Printf("  (%s, scale=%s, %.1fs)\n\n", eid, *scale, time.Since(start).Seconds())
		}
	}
}
