package main

// The -serve mode benchmarks the network front-end: per queue kind it boots
// a real hdcps-serve instance on a loopback listener, finds the max
// sustainable open-loop task rate (internal/load's doubling/bisection knee
// search under the sustainability policy), measures latency quantiles at a
// fixed rate below the knee, and proves the graceful-shutdown ledger. The
// result lands in BENCH_serve.json next to BENCH_native.json and feeds the
// serve-gate collapse detector.

import (
	"encoding/json"
	"fmt"
	"os"
	stdruntime "runtime"
	"strings"
	"testing"
	"time"

	"hdcps/internal/serve"
)

// serveBenchSchema versions BENCH_serve.json. v2 added streams,
// ingest_allocs_per_line, and encode_allocs_per_line; v1 documents are still
// readable (old runs merge and gate with those fields zero).
const (
	serveBenchSchema   = "hdcps-serve-bench/v2"
	serveBenchSchemaV1 = "hdcps-serve-bench/v1"
)

func serveSchemaOK(s string) bool {
	return s == serveBenchSchema || s == serveBenchSchemaV1
}

// ServeBenchDoc is the top-level BENCH_serve.json document; runs accumulate
// by label exactly like BENCH_native.json's.
type ServeBenchDoc struct {
	Schema string          `json:"schema"`
	Runs   []ServeBenchRun `json:"runs"`
}

// ServeBenchRun is one labeled serving sweep across the queue kinds.
type ServeBenchRun struct {
	Label      string               `json:"label"`
	GoVersion  string               `json:"go_version"`
	GOOS       string               `json:"goos"`
	GOARCH     string               `json:"goarch"`
	CPUs       int                  `json:"cpus"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Workers    int                  `json:"workers"`
	Graph      string               `json:"graph"`
	Scale      string               `json:"scale"`
	Seed       uint64               `json:"seed"`
	Batch      int                  `json:"batch"`
	ProbeMs    int64                `json:"probe_ms"`
	FixedMs    int64                `json:"fixed_ms"`
	Streams    int                  `json:"streams,omitempty"`
	Sweeps     []serve.SweepMeasure `json:"sweeps"`
	// IngestAllocsPerLine / EncodeAllocsPerLine are heap allocations per
	// NDJSON line on the server's parse loop and the client's encode loop,
	// measured engine-free with testing.Benchmark. The serve gate fails any
	// fresh run whose ingest figure exceeds 2 regardless of -tol.
	IngestAllocsPerLine float64 `json:"ingest_allocs_per_line"`
	EncodeAllocsPerLine float64 `json:"encode_allocs_per_line"`
}

// measureAllocsPerLine runs the engine-free ingest and encode loops under
// testing.Benchmark and reports heap allocations per line.
func measureAllocsPerLine() (ingest, encode float64) {
	const lines = 4096
	body := serve.IngestBenchBody(lines, 1<<20)
	if _, err := serve.IngestBenchLoop(body); err != nil { // warm the pools
		return -1, -1
	}
	ir := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := serve.IngestBenchLoop(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	specs := make([]serve.TaskSpec, lines)
	for i := range specs {
		specs[i] = serve.TaskSpec{Node: uint32(i), Prio: int64(i % 13), Data: uint64(i)}
	}
	serve.EncodeBenchLoop(specs)
	er := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serve.EncodeBenchLoop(specs)
		}
	})
	return float64(ir.AllocsPerOp()) / lines, float64(er.AllocsPerOp()) / lines
}

func runServeBench(label, scale, out string, workers, streams int, seed uint64, probeDur, fixedDur time.Duration) (ServeBenchRun, error) {
	opts := serve.BenchOptions{
		Graph:    "road",
		Scale:    scale,
		Seed:     seed,
		Workers:  workers,
		ProbeDur: probeDur,
		FixedDur: fixedDur,
		Streams:  streams,
	}
	opts = applyServeDefaults(opts)
	run := ServeBenchRun{
		Label:      label,
		GoVersion:  stdruntime.Version(),
		GOOS:       stdruntime.GOOS,
		GOARCH:     stdruntime.GOARCH,
		CPUs:       stdruntime.NumCPU(),
		GoMaxProcs: stdruntime.GOMAXPROCS(0),
		Workers:    opts.Workers,
		Graph:      opts.Graph,
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		Batch:      opts.Batch,
		ProbeMs:    opts.ProbeDur.Milliseconds(),
		FixedMs:    opts.FixedDur.Milliseconds(),
		Streams:    opts.Streams,
	}
	run.IngestAllocsPerLine, run.EncodeAllocsPerLine = measureAllocsPerLine()
	fmt.Fprintf(os.Stderr, "serve-bench allocs/line: ingest %.3f, encode %.3f\n",
		run.IngestAllocsPerLine, run.EncodeAllocsPerLine)
	sweeps, err := serve.RunBench(opts, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		return run, err
	}
	run.Sweeps = sweeps

	doc := ServeBenchDoc{Schema: serveBenchSchema}
	if prev, err := os.ReadFile(out); err == nil {
		var existing ServeBenchDoc
		if err := json.Unmarshal(prev, &existing); err == nil && serveSchemaOK(existing.Schema) {
			for _, r := range existing.Runs {
				if r.Label != label {
					doc.Runs = append(doc.Runs, r)
				}
			}
		}
	}
	doc.Runs = append(doc.Runs, run)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return run, err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return run, err
	}
	return run, os.WriteFile(out, buf, 0o644)
}

// applyServeDefaults mirrors serve.BenchOptions' own defaulting so the run
// document records the effective values, not zeros.
func applyServeDefaults(o serve.BenchOptions) serve.BenchOptions {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.ProbeDur <= 0 {
		o.ProbeDur = 400 * time.Millisecond
	}
	if o.FixedDur <= 0 {
		o.FixedDur = 2 * o.ProbeDur
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale == "" {
		o.Scale = "tiny"
	}
	if o.Streams == 0 {
		o.Streams = 4
	}
	return o
}

// checkServeRun is the serve-gate collapse detector, shaped like
// checkNativeRun: it compares a fresh sweep against the newest run in the
// baseline BENCH_serve.json and fails only on collapse, not drift.
//
// Tolerance-exempt canary (baseline-free): any server 5xx in the fresh
// fixed-rate runs fails outright — saturation must surface as 429/503
// backpressure, and a 5xx is a front-end bug no throughput tolerance
// excuses. Against the baseline, per queue kind: the knee (max_rate_tps)
// must stay above (1-tol) of baseline, and the fixed-rate p99 must stay
// under 4× baseline + 5ms (latency on shared CI boxes is far noisier than
// throughput, so the bound only catches order-of-magnitude blowups). Kinds
// present on only one side are ignored; an empty baseline passes vacuously.
func checkServeRun(run ServeBenchRun, baselinePath string, tol float64) error {
	var canary []string
	for _, s := range run.Sweeps {
		if s.ServerErrs > 0 {
			canary = append(canary, fmt.Sprintf("%s: %d server 5xx during the fixed-rate run", s.Queue, s.ServerErrs))
		}
	}
	// Tolerance-exempt allocs/line canary: the zero-allocation ingest path is
	// a structural property, not a throughput number — no -tol excuses the
	// parser falling back to per-line json.Unmarshal. Applies only to the
	// fresh run (v1 baselines carry no such field).
	if run.IngestAllocsPerLine > 2 {
		canary = append(canary, fmt.Sprintf(
			"ingest allocs/line %.3f > 2: the zero-alloc parse path regressed", run.IngestAllocsPerLine))
	}
	if len(canary) > 0 {
		return fmt.Errorf("tolerance-exempt canary tripped:\n  %s", strings.Join(canary, "\n  "))
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var doc ServeBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if !serveSchemaOK(doc.Schema) {
		return fmt.Errorf("baseline %s: unknown schema %q", baselinePath, doc.Schema)
	}
	if len(doc.Runs) == 0 {
		fmt.Fprintf(os.Stderr, "serve gate: baseline %s has no runs; passing vacuously\n", baselinePath)
		return nil
	}
	base := doc.Runs[len(doc.Runs)-1]
	baseByQueue := make(map[string]serve.SweepMeasure, len(base.Sweeps))
	for _, s := range base.Sweeps {
		baseByQueue[s.Queue] = s
	}
	var failures []string
	for _, s := range run.Sweeps {
		b, ok := baseByQueue[s.Queue]
		if !ok {
			continue
		}
		floor := b.MaxRate * (1 - tol)
		p99Cap := b.P99Ms*4 + 5.0
		switch {
		case s.MaxRate < floor:
			failures = append(failures, fmt.Sprintf(
				"%s: knee %.0f tasks/s < %.0f (%.0f%% of %q's %.0f)",
				s.Queue, s.MaxRate, floor, 100*(1-tol), base.Label, b.MaxRate))
		case s.P99Ms > p99Cap:
			failures = append(failures, fmt.Sprintf(
				"%s: fixed-rate p99 %.2fms > %.2fms (baseline %q: %.2fms)",
				s.Queue, s.P99Ms, p99Cap, base.Label, b.P99Ms))
		default:
			fmt.Fprintf(os.Stderr, "serve gate: %-10s OK  knee %.0f tasks/s vs %q's %.0f (floor %.0f), p99 %.2fms\n",
				s.Queue, s.MaxRate, base.Label, b.MaxRate, floor, s.P99Ms)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("serving collapse vs baseline %q:\n  %s",
			base.Label, strings.Join(failures, "\n  "))
	}
	return nil
}
