package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	stdruntime "runtime"
	"sort"
	"strings"
	"time"

	"hdcps/internal/graph"
	"hdcps/internal/obs"
	"hdcps/internal/runtime"
	"hdcps/internal/workload"
)

// The -native mode benchmarks the goroutine HD-CPS runtime on the host and
// emits a machine-readable BENCH_native.json document, so the perf
// trajectory of the native runtime is diffable across PRs (the README
// documents the schema and how to compare two runs).

// NativeBenchDoc is the top-level BENCH_native.json document. Runs
// accumulate: re-running the tool with -o against an existing file appends
// the new labeled run, so a single file carries the whole trajectory.
type NativeBenchDoc struct {
	Schema string           `json:"schema"` // "hdcps-native-bench/v1"
	Runs   []NativeBenchRun `json:"runs"`
}

// NativeBenchRun is one labeled benchmark sweep across all workloads.
// CPUs is the host's runtime.NumCPU(); GoMaxProcs the GOMAXPROCS the run
// actually executed under (they differ in cgroup-limited containers, which
// is what makes cross-host throughput comparisons meaningful). GoMaxProcs
// is omitempty so pre-PR-6 documents read back unchanged.
type NativeBenchRun struct {
	Label      string                 `json:"label"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	CPUs       int                    `json:"cpus"`
	GoMaxProcs int                    `json:"gomaxprocs,omitempty"`
	Workers    int                    `json:"workers"`
	Graph      string                 `json:"graph"`
	Seed       uint64                 `json:"seed"`
	Reps       int                    `json:"reps"`
	Workloads  []NativeBenchMeasure   `json:"workloads"`
	Quality    []NativeQualityMeasure `json:"quality,omitempty"`
}

// NativeBenchMeasure is one workload's measurement: throughput, allocation
// rate, and the spread of per-run completion times.
type NativeBenchMeasure struct {
	Workload      string  `json:"workload"`
	TasksPerOp    float64 `json:"tasks_per_op"`    // tasks processed per run
	TasksPerSec   float64 `json:"tasks_per_sec"`   // aggregate throughput
	AllocsPerTask float64 `json:"allocs_per_task"` // heap allocations amortized per task
	P50Ms         float64 `json:"p50_ms"`          // median per-run completion time
	P99Ms         float64 `json:"p99_ms"`          // tail per-run completion time
}

// NativeQualityMeasure is one cell of the relaxation-vs-speed quality
// sweep: a (queue kind, workload) pair's throughput next to its sampled
// scheduling quality. Strict kinds (heap/dheap/twolevel) must report zero
// inversions — checkNativeRun fails otherwise, a structural canary for
// queue bugs — while multiqueue reports the bounded rank error it trades
// for scalability.
type NativeQualityMeasure struct {
	Queue       string  `json:"queue"`
	Workload    string  `json:"workload"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	RankSamples int64   `json:"rank_samples"`
	Inversions  int64   `json:"prio_inversions"`
	MeanRankErr float64 `json:"mean_rank_err"`
	P99RankErr  float64 `json:"p99_rank_err"`
	MaxRankErr  int64   `json:"max_rank_err"`
}

// nativeGraph maps the -scale flag to the benchmark input, mirroring the
// sizing ladder of internal/exp (tiny is what BenchmarkNativeRuntime uses).
func nativeGraph(scale string, seed uint64) (*graph.CSR, string, error) {
	switch scale {
	case "tiny":
		return graph.Road(48, 48, seed), "road-48x48", nil
	case "small":
		return graph.Road(120, 120, seed), "road-120x120", nil
	case "large":
		return graph.Road(240, 240, seed), "road-240x240", nil
	}
	return nil, "", fmt.Errorf("unknown scale %q (tiny, small, large)", scale)
}

func runNativeBench(label, scale, out string, workers, reps int, seed uint64) (NativeBenchRun, error) {
	g, gname, err := nativeGraph(scale, seed)
	if err != nil {
		return NativeBenchRun{}, err
	}
	if workers <= 0 {
		workers = 4
	}
	if reps <= 0 {
		reps = 20
	}
	run := NativeBenchRun{
		Label:      label,
		GoVersion:  stdruntime.Version(),
		GOOS:       stdruntime.GOOS,
		GOARCH:     stdruntime.GOARCH,
		CPUs:       stdruntime.NumCPU(),
		GoMaxProcs: stdruntime.GOMAXPROCS(0),
		Workers:    workers,
		Graph:      gname,
		Seed:       seed,
		Reps:       reps,
	}
	cfg := runtime.DefaultConfig(workers)
	cfg.Seed = seed
	for _, name := range workload.Names() {
		w, err := workload.New(name, g)
		if err != nil {
			return run, err
		}
		// Warm up once (first run pays graph/page faults and heap growth).
		runtime.Run(w, cfg)

		times := make([]time.Duration, 0, reps)
		var tasks int64
		var ms0, ms1 stdruntime.MemStats
		stdruntime.GC()
		stdruntime.ReadMemStats(&ms0)
		var total time.Duration
		for i := 0; i < reps; i++ {
			res := runtime.Run(w, cfg)
			times = append(times, res.Elapsed)
			total += res.Elapsed
			tasks += res.TasksProcessed
		}
		stdruntime.ReadMemStats(&ms1)
		if err := w.Verify(); err != nil {
			return run, fmt.Errorf("native bench: %s wrong result: %w", name, err)
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		m := NativeBenchMeasure{
			Workload:      name,
			TasksPerOp:    float64(tasks) / float64(reps),
			TasksPerSec:   float64(tasks) / total.Seconds(),
			AllocsPerTask: float64(ms1.Mallocs-ms0.Mallocs) / float64(tasks),
			P50Ms:         durMs(percentile(times, 0.50)),
			P99Ms:         durMs(percentile(times, 0.99)),
		}
		run.Workloads = append(run.Workloads, m)
		fmt.Fprintf(os.Stderr, "native %-10s %10.0f tasks/s  %6.2f allocs/task  p50 %.2fms  p99 %.2fms\n",
			name, m.TasksPerSec, m.AllocsPerTask, m.P50Ms, m.P99Ms)
	}

	quality, err := runQualitySweep(g, workers, seed)
	if err != nil {
		return run, err
	}
	run.Quality = quality

	doc := NativeBenchDoc{Schema: "hdcps-native-bench/v1"}
	if prev, err := os.ReadFile(out); err == nil {
		var existing NativeBenchDoc
		if err := json.Unmarshal(prev, &existing); err == nil && existing.Schema == doc.Schema {
			// Replace a same-labeled run in place, keep the others.
			for _, r := range existing.Runs {
				if r.Label != label {
					doc.Runs = append(doc.Runs, r)
				}
			}
		}
	}
	doc.Runs = append(doc.Runs, run)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return run, err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return run, err
	}
	return run, os.WriteFile(out, buf, 0o644)
}

// runQualitySweep measures the relaxation-vs-speed frontier: every queue
// kind × a contended workload mix, reporting tasks/s (unobserved reps) next
// to the sampled rank-error stats from one observed rep (every 16th pop is
// compared against the best observable work — the MultiQueue's sharded min
// witness, or a Peek-after-pop canary for the strict kinds).
func runQualitySweep(g *graph.CSR, workers int, seed uint64) ([]NativeQualityMeasure, error) {
	const reps = 3
	var out []NativeQualityMeasure
	for _, kind := range runtime.QueueKinds() {
		for _, name := range []string{"sssp", "bfs", "color", "pagerank"} {
			w, err := workload.New(name, g)
			if err != nil {
				return nil, err
			}
			cfg := runtime.DefaultConfig(workers)
			cfg.Seed = seed
			cfg.QueueKind = kind
			runtime.Run(w, cfg) // warm-up
			var tasks int64
			var total time.Duration
			for i := 0; i < reps; i++ {
				res := runtime.Run(w, cfg)
				tasks += res.TasksProcessed
				total += res.Elapsed
			}
			if err := w.Verify(); err != nil {
				return nil, fmt.Errorf("quality sweep: %s/%s wrong result: %w", kind, name, err)
			}

			rec := obs.New(obs.Config{Workers: workers, RingSize: 1 << 14, SampleEvery: 16})
			cfg.Obs = rec
			e := runtime.NewEngine(w, cfg)
			_ = e.Submit(w.InitialTasks()...)
			_ = e.Start()
			_ = e.Drain(context.Background())
			snap := e.Snapshot()
			_ = e.Stop(context.Background())
			if err := w.Verify(); err != nil {
				return nil, fmt.Errorf("quality sweep: observed %s/%s wrong result: %w", kind, name, err)
			}
			m := NativeQualityMeasure{
				Queue:       kind,
				Workload:    name,
				TasksPerSec: float64(tasks) / total.Seconds(),
				RankSamples: snap.RankSamples,
				Inversions:  snap.PrioInversions,
				MaxRankErr:  snap.RankErrorMax,
			}
			if snap.RankSamples > 0 {
				m.MeanRankErr = float64(snap.RankErrorSum) / float64(snap.RankSamples)
			}
			var ranks []int64
			for _, ev := range rec.Events() {
				if ev.Kind == obs.EvRankSample {
					ranks = append(ranks, ev.A)
				}
			}
			if len(ranks) > 0 {
				sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
				m.P99RankErr = float64(ranks[int(0.99*float64(len(ranks)-1))])
			}
			out = append(out, m)
			fmt.Fprintf(os.Stderr, "quality %-10s %-10s %10.0f tasks/s  %5d samples  %4d inv  p99 rank %.0f  max %d\n",
				kind, name, m.TasksPerSec, m.RankSamples, m.Inversions, m.P99RankErr, m.MaxRankErr)
		}
	}
	return out, nil
}

// strictKinds are the queue kinds whose pop order is exact: any sampled
// priority inversion is a structural queue bug, not relaxation.
func strictKinds() map[string]bool {
	return map[string]bool{
		runtime.QueueHeap:     true,
		runtime.QueueDHeap:    true,
		runtime.QueueTwoLevel: true,
	}
}

// checkNativeRun is the CI bench-regression smoke gate: it compares a fresh
// run against the newest run recorded in the baseline document and fails
// only on collapse, not drift — a workload's throughput dropping below
// (1-tol) of baseline, or its allocation rate blowing past twice the
// baseline (plus an absolute 0.05 allocs/task floor so a 0-alloc baseline
// doesn't make any allocation a failure). Workloads present on only one
// side are ignored; an empty baseline passes vacuously.
//
// It additionally gates on scheduling quality, baseline-free: a strict
// queue kind (heap/dheap/twolevel) reporting any sampled priority
// inversion in the fresh run's quality sweep fails the gate outright —
// exact queues cannot legally invert, so a nonzero count is a structural
// queue bug the throughput numbers would never surface.
func checkNativeRun(run NativeBenchRun, baselinePath string, tol float64) error {
	strict := strictKinds()
	var qfailures []string
	for _, q := range run.Quality {
		if strict[q.Queue] && q.Inversions > 0 {
			qfailures = append(qfailures, fmt.Sprintf(
				"%s/%s: %d priority inversions from a strict queue kind (%d samples)",
				q.Queue, q.Workload, q.Inversions, q.RankSamples))
		}
	}
	if len(qfailures) > 0 {
		return fmt.Errorf("strict-kind inversion canary tripped:\n  %s",
			strings.Join(qfailures, "\n  "))
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var doc NativeBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if doc.Schema != "hdcps-native-bench/v1" {
		return fmt.Errorf("baseline %s: unknown schema %q", baselinePath, doc.Schema)
	}
	if len(doc.Runs) == 0 {
		fmt.Fprintf(os.Stderr, "gate: baseline %s has no runs; passing vacuously\n", baselinePath)
		return nil
	}
	base := doc.Runs[len(doc.Runs)-1]
	baseByWL := make(map[string]NativeBenchMeasure, len(base.Workloads))
	for _, m := range base.Workloads {
		baseByWL[m.Workload] = m
	}
	var failures []string
	for _, m := range run.Workloads {
		b, ok := baseByWL[m.Workload]
		if !ok {
			continue
		}
		floor := b.TasksPerSec * (1 - tol)
		allocCap := b.AllocsPerTask*2 + 0.05
		switch {
		case m.TasksPerSec < floor:
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f tasks/s < %.0f (%.0f%% of %q's %.0f)",
				m.Workload, m.TasksPerSec, floor, 100*(1-tol), base.Label, b.TasksPerSec))
		case m.AllocsPerTask > allocCap:
			failures = append(failures, fmt.Sprintf(
				"%s: %.3f allocs/task > %.3f (baseline %q: %.3f)",
				m.Workload, m.AllocsPerTask, allocCap, base.Label, b.AllocsPerTask))
		default:
			fmt.Fprintf(os.Stderr, "gate: %-10s OK  %.0f tasks/s vs %q's %.0f (floor %.0f)\n",
				m.Workload, m.TasksPerSec, base.Label, b.TasksPerSec, floor)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput collapse vs baseline %q:\n  %s",
			base.Label, strings.Join(failures, "\n  "))
	}
	return nil
}

// percentile returns the q-quantile of sorted durations (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
