// Command hdcps-serve is the long-lived network front-end over the native
// engine: an HTTP/JSON API for streaming task submission, per-job
// create/snapshot/drain/cancel, and an ops plane (expvar, pprof, the obs
// recorder) on the same port.
//
// Usage:
//
//	hdcps-serve -addr :8080 -workload sssp -input road -scale small -workers 4
//	hdcps-serve -addr 127.0.0.1:0 -addr-file /tmp/addr -queue multiqueue -quota 16384
//
// Endpoints:
//
//	GET  /healthz                  200 while the process lives (pure liveness)
//	GET  /readyz                   200 ready / 503 draining or overloaded
//	GET  /v1/info                  workload, input, node range, fleet shape
//	GET  /v1/snapshot              full engine snapshot (ledger, quality)
//	GET  /v1/jobs                  per-job ledger rows
//	POST /v1/jobs                  create a tenant {name, weight, max_outstanding, tdf_bias}
//	GET  /v1/jobs/{id}             one job's ledger row
//	POST /v1/jobs/{id}/submit      NDJSON {"node","prio","data"} lines
//	POST /v1/jobs/{id}/drain       block until the job quiesces (?timeout=)
//	POST /v1/jobs/{id}/cancel      cancel the job, return its final ledger
//	GET  /debug/vars|pprof/|obs    ops plane
//
// Backpressure is explicit: per-job quota exhaustion answers 429, a global
// overload shed or draining server 503 — both with Retry-After — and a
// cancelled job 409. SIGTERM/SIGINT trigger the graceful drain: stop
// admitting, finish in-flight requests, drain the engine, and exit 0 only
// if the conservation ledger proves no accepted task was lost.
//
// Fault injection (soak tooling): -netchaos wraps the listener with the
// connection-level fault mix (latency, throttle, RST, short reads, partial
// writes, stalls — see internal/netchaos), and -chaos wraps the engine
// transport with the scheduler-level mix (see internal/chaos). Both print
// their fault counters on exit, and the ledger proof must still pass.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdcps/internal/chaos"
	"hdcps/internal/netchaos"
	"hdcps/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		wl       = flag.String("workload", "sssp", "workload name (sssp, astar, bfs, mst, color, pagerank)")
		input    = flag.String("input", "road", "builtin input graph: road, cage, web, lj, grid")
		scale    = flag.String("scale", "small", "input scale: tiny, small, large")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		workers  = flag.Int("workers", 4, "engine worker goroutines")
		queue    = flag.String("queue", "", "local-queue kind (default twolevel; see hdcps-run -list)")
		quota    = flag.Int64("quota", 1<<16, "job-0 admission quota (outstanding tasks before 429); 0 = unlimited")
		maxOut   = flag.Int64("max-outstanding", 1<<20, "global outstanding limit before 503 shed; <0 disables")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown engine drain budget")
		obsOn    = flag.Bool("obs", true, "attach the observability recorder (served at /debug/obs)")
		seedInit = flag.Bool("seed-initial", true, "submit the workload's initial tasks at startup")
		stallT   = flag.Duration("submit-stall", 0, "slow-client stall guard for submit bodies (0 = 15s default, <0 disables)")
		ncSpec   = flag.String("netchaos", "", "connection-fault mix, e.g. seed=7,rst=0.02,shortread=0.1 or 'default' (empty disables)")
		ecSpec   = flag.String("chaos", "", "engine-transport fault mix, e.g. seed=7,delay=0.1,dup=0.02 or 'default' (empty disables)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "hdcps-serve: ", log.LstdFlags|log.Lmicroseconds)

	var engineChaos *chaos.Config
	if *ecSpec != "" {
		ccfg, err := chaos.ParseSpec(*ecSpec)
		if err != nil {
			logger.Fatal(err)
		}
		engineChaos = &ccfg
	}

	s, err := serve.New(serve.Config{
		Workload:           *wl,
		Input:              *input,
		Scale:              *scale,
		Seed:               *seed,
		Workers:            *workers,
		QueueKind:          *queue,
		MaxOutstanding:     *maxOut,
		DefaultQuota:       *quota,
		DrainTimeout:       *drainT,
		Obs:                *obsOn,
		SeedInitial:        *seedInit,
		SubmitStallTimeout: *stallT,
		Chaos:              engineChaos,
		Log:                logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	var ncLis *netchaos.Listener
	if *ncSpec != "" {
		nccfg, err := netchaos.ParseSpec(*ncSpec)
		if err != nil {
			logger.Fatal(err)
		}
		ncLis = netchaos.Wrap(lis, nccfg)
		lis = ncLis
		logger.Printf("netchaos enabled: %s", nccfg.String())
	}
	bound := lis.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}
	logger.Printf("serving %s/%s (%s) on %s: %d workers, queue %q, quota %d",
		*wl, *input, *scale, bound, *workers, *queue, *quota)

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		logger.Printf("received %s, draining (budget %s)", got, *drainT)
	case err := <-serveErr:
		logger.Fatalf("http serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT+30*time.Second)
	defer cancel()
	rep, err := s.Shutdown(ctx)
	snap := rep.Snapshot
	logger.Printf("ledger: accepted %d | submitted %d + spawned %d = processed %d + bagsRetired %d + quarantined %d + cancelled %d (outstanding %d)",
		rep.Accepted, snap.Submitted, snap.Spawned, snap.TasksProcessed,
		snap.BagsRetired, snap.Quarantined, snap.Cancelled, snap.Outstanding)
	if ncLis != nil {
		logger.Printf("netchaos: %s", ncLis.Stats())
	}
	if ct := s.ChaosTransport(); ct != nil {
		logger.Printf("chaos: %s", ct.Stats())
	}
	if err != nil {
		logger.Printf("graceful drain FAILED: %v", err)
		os.Exit(1)
	}
	if !rep.LedgerExact {
		logger.Print("graceful drain FAILED: ledger not exact")
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		logger.Printf("http serve: %v", err)
		os.Exit(1)
	}
	fmt.Println("drain clean: no accepted task lost")
}
