// Hardware-assist study: graph coloring on the simulated Table I machine,
// comparing HD-CPS software-only against the hardware receive queue (hRQ)
// and the full hRQ+hPQ design, plus the Swarm upper bound — Figure 6/8 in
// miniature, runnable in seconds.
package main

import (
	"fmt"
	"log"

	"hdcps"
)

func main() {
	g := hdcps.Web(6000, 3)
	fmt.Printf("interference graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	type colorer interface{ NumColors() int }

	var baseline int64
	for _, name := range []string{"hdcps-sw", "hrq", "hdcps-hw", "swarm"} {
		w, err := hdcps.NewWorkload("color", g)
		if err != nil {
			log.Fatal(err)
		}
		s, err := hdcps.NewScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := hdcps.HardwareMachine()
		if name == "hdcps-sw" {
			cfg.HRQSize, cfg.HPQSize = 0, 0 // software-only on the same fabric
		}
		run := hdcps.RunSim(s, w, cfg, 3)
		if err := w.Verify(); err != nil {
			log.Fatalf("%s: invalid coloring: %v", name, err)
		}
		if baseline == 0 {
			baseline = run.CompletionTime
		}
		fmt.Printf("%-9s %10d cycles (%.2fx vs software)  colors=%d  [%s]\n",
			name, run.CompletionTime,
			float64(baseline)/float64(run.CompletionTime),
			w.(colorer).NumColors(), run.Breakdown)
	}
	fmt.Println("\nhardware queues accelerate task transfer and PQ ops (§III-D, Fig. 6)")
}
