// Streaming work into a running engine: where the one-shot hdcps.RunNative
// spins a fleet up and tears it down around a single task set, the Engine
// lifecycle (Start → Submit/Drain → Stop) keeps the workers, their heaps,
// and the drift controller alive across waves of work — the fleet parks
// when it quiesces and wakes when the next Submit lands.
//
// The demo streams residual PageRank: the per-node seed tasks arrive in
// waves (think: a crawl delivering pages in batches), each wave drained to
// quiescence before the next, with Snapshot showing the fleet mid-flight.
// The converged ranks are identical to a one-shot run — residual PageRank
// reaches the same fixpoint whatever order the residuals are injected in.
package main

import (
	"context"
	"fmt"
	"log"

	"hdcps"
)

func main() {
	g := hdcps.Web(20000, 9)
	w, err := hdcps.NewWorkload("pagerank", g)
	if err != nil {
		log.Fatal(err)
	}

	e := hdcps.NewEngine(w, hdcps.DefaultNativeConfig(4))
	if err := e.Start(); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	seeds := w.InitialTasks()
	const waves = 8
	chunk := (len(seeds) + waves - 1) / waves
	for start := 0; start < len(seeds); start += chunk {
		end := min(start+chunk, len(seeds))
		if err := e.Submit(seeds[start:end]...); err != nil {
			log.Fatal(err)
		}
		if err := e.Drain(ctx); err != nil {
			log.Fatal(err)
		}
		s := e.Snapshot()
		fmt.Printf("wave %d/%d: %6d tasks processed so far, %3d bags, TDF %d\n",
			s.Epoch, waves, s.TasksProcessed, s.BagsCreated, s.TDF)
	}

	if err := e.Stop(ctx); err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatalf("ranks failed verification: %v", err)
	}

	res := e.Result()
	fmt.Printf("\nconverged in %v: %d tasks, %d edges examined\n",
		res.Elapsed, res.TasksProcessed, res.EdgesExamined)
	var parks int64
	for _, ws := range e.Snapshot().Workers {
		parks += ws.IdleParks
	}
	fmt.Printf("fleet parked %d times across %d waves — workers outlive the work\n",
		parks, waves)
}
