// Road-network routing: the paper's motivating scenario. Computes shortest
// paths over a large sparse road network under every software CPS design
// and shows why drift awareness matters: schedulers that let core priorities
// drift do redundant relaxations and lose time.
package main

import (
	"fmt"
	"log"

	"hdcps"
)

func main() {
	// Sparse, high-diameter road network — the rUSA stand-in, the input
	// class where priority drift hurts the most (§V).
	g := hdcps.Road(160, 160, 7)
	fmt.Printf("road network: %d intersections, %d segments\n\n", g.NumNodes(), g.NumEdges())

	probe, err := hdcps.NewWorkload("sssp", g)
	if err != nil {
		log.Fatal(err)
	}
	seqTasks := hdcps.SequentialTasks(probe)
	fmt.Printf("%-10s %12s %10s %8s %8s\n", "scheduler", "cycles", "tasks", "workeff", "drift")

	for _, name := range []string{"reld", "obim", "pmod", "swminnow", "hdcps-sw"} {
		w, err := hdcps.NewWorkload("sssp", g)
		if err != nil {
			log.Fatal(err)
		}
		s, err := hdcps.NewScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		run := hdcps.RunSim(s, w, hdcps.SoftwareMachine(40), 7)
		if err := w.Verify(); err != nil {
			log.Fatalf("%s produced wrong distances: %v", name, err)
		}
		run.SeqTasks = seqTasks
		fmt.Printf("%-10s %12d %10d %8.2f %8.2f\n",
			name, run.CompletionTime, run.TasksProcessed, run.WorkEfficiency(), run.AvgDrift())
	}
	fmt.Println("\nlower drift -> fewer redundant relaxations -> faster completion (§II-B)")
}
