// Web-graph ranking: residual PageRank on a power-law web graph using the
// native HD-CPS runtime, with priority order (largest residuals first)
// doing the heavy lifting — and a look at the adaptive TDF controller's
// trace while it balances drift against communication.
package main

import (
	"fmt"
	"log"
	"sort"

	"hdcps"
)

func main() {
	g := hdcps.Web(20000, 9)
	fmt.Printf("web graph: %d pages, %d links\n", g.NumNodes(), g.NumEdges())

	w, err := hdcps.NewWorkload("pagerank", g)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hdcps.DefaultNativeConfig(4)
	cfg.Drift = hdcps.DriftConfig{SampleInterval: 500} // more controller action to look at
	res := hdcps.RunNative(w, cfg)
	if err := w.Verify(); err != nil {
		log.Fatalf("ranks failed verification: %v", err)
	}
	fmt.Printf("converged in %v, %d tasks, %d bags\n", res.Elapsed, res.TasksProcessed, res.BagsCreated)

	// The workload interface is intentionally minimal; concrete types give
	// access to results. Rank() returns 2^30 fixed-point values.
	type pr interface{ Rank() []int64 }
	ranks := w.(pr).Rank()
	type page struct {
		id   int
		rank float64
	}
	pages := make([]page, len(ranks))
	for i, r := range ranks {
		pages[i] = page{i, float64(r) / (1 << 30)}
	}
	sort.Slice(pages, func(a, b int) bool { return pages[a].rank > pages[b].rank })
	fmt.Println("\ntop pages:")
	for _, p := range pages[:10] {
		fmt.Printf("  page %-6d rank %.4f\n", p.id, p.rank)
	}

	if len(res.TDFTrace) > 0 {
		fmt.Printf("\nTDF controller trace (first intervals): %v\n", head(res.TDFTrace, 12))
		fmt.Printf("drift trace:                            %v\n", headF(res.DriftTrace, 6))
	}
}

func head(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

func headF(xs []float64, n int) []float64 {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}
