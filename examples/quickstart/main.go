// Quickstart: run single-source shortest paths under the HD-CPS scheduler,
// both natively (goroutines, real time) and on the deterministic simulator
// (cycles, reproducible), and verify the result.
package main

import (
	"fmt"
	"log"

	"hdcps"
)

func main() {
	// A 100x100 road-network-like graph (see cmd/graphgen for more).
	g := hdcps.Road(100, 100, 42)
	fmt.Printf("input: %s with %d nodes, %d edges\n", g.Name, g.NumNodes(), g.NumEdges())

	// 1. Native execution: the goroutine-based HD-CPS runtime.
	w, err := hdcps.NewWorkload("sssp", g)
	if err != nil {
		log.Fatal(err)
	}
	res := hdcps.RunNative(w, hdcps.DefaultNativeConfig(4))
	if err := w.Verify(); err != nil {
		log.Fatalf("native result wrong: %v", err)
	}
	fmt.Printf("native:    %v for %d tasks on 4 workers (verified)\n",
		res.Elapsed, res.TasksProcessed)

	// 2. Simulated execution: the paper's 40-core software-mode machine.
	w2, err := hdcps.NewWorkload("sssp", g)
	if err != nil {
		log.Fatal(err)
	}
	s, err := hdcps.NewScheduler("hdcps-sw")
	if err != nil {
		log.Fatal(err)
	}
	run := hdcps.RunSim(s, w2, hdcps.SoftwareMachine(40), 42)
	if err := w2.Verify(); err != nil {
		log.Fatalf("simulated result wrong: %v", err)
	}
	run.SeqTasks = hdcps.SequentialTasks(w2)
	fmt.Printf("simulated: %d cycles on 40 cores, work efficiency %.2f, drift %.2f\n",
		run.CompletionTime, run.WorkEfficiency(), run.AvgDrift())
	fmt.Printf("breakdown: %s\n", run.Breakdown)
}
